//! End-to-end telemetry pipeline test: a real campaign recorded through
//! a rotating JSONL sink, analyzed offline by `dynp-insight`.
//!
//! The tentpole guarantee under test: the analyzer's `logical` section
//! is **byte-identical** whether the campaign ran on one worker or
//! four, because every event carries deterministic trace context
//! (campaign, cell, span ids) and the merge orders by the recorder's
//! logical clock, not by wall-clock or thread interleaving.
//!
//! One test function: the recorder is process-global, so the two
//! campaign runs must not race each other.

use dynp_rs::insight::{analyze_path, Options};
use dynp_rs::obs::{self, Recorder, Sink};
use dynp_rs::prelude::*;
use std::path::{Path, PathBuf};

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dynp_insight_{}_{}", tag, std::process::id()))
}

fn campaign_trace() -> Vec<Job> {
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: 6_000.0,
        ..CtcModel::default()
    };
    model.generate(240, 11).jobs
}

fn config(dir: &Path, workers: usize) -> CampaignConfig {
    CampaignConfig::new("insight", 64)
        .with_shard_seconds(WEEK_SECONDS / 2)
        .with_selectors(vec![
            SelectorSpec::Fixed(Policy::Fcfs),
            SelectorSpec::Fixed(Policy::Sjf),
            SelectorSpec::dynp(),
        ])
        .with_factors(vec![1.0, 2.0])
        .with_exact(Some(
            ExactConfig::new()
                .with_job_range(2, 8)
                .with_max_snapshots(1)
                .with_node_budget(150),
        ))
        .with_workers(workers)
        .with_output_dir(dir)
}

/// Runs the campaign with a fresh rotating-sink recorder; returns the
/// campaign outcome.
fn record_run(dir: &Path, workers: usize, jobs: &[Job]) -> CampaignOutcome {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    // Small-but-sufficient rotation: forces several rotated files while
    // keeping enough history that no line is discarded.
    let sink = Sink::rotating(dir.join("campaign.events.jsonl"), 64 * 1024, 200).unwrap();
    obs::install(Recorder::new(sink));
    run_campaign(jobs, &config(dir, workers)).expect("campaign runs")
}

#[test]
fn campaign_events_analyze_identically_across_worker_counts() {
    let jobs = campaign_trace();

    let dir1 = unique_dir("w1");
    let out1 = record_run(&dir1, 1, &jobs);
    let dir4 = unique_dir("w4");
    let out4 = record_run(&dir4, 4, &jobs);
    assert_eq!(out1.cells_total, out4.cells_total);
    assert!(out1.cells_total >= 12, "trace too small: {}", out1.cells_total);

    // Rotation actually happened — the analyzer is merging shards, not
    // reading one file.
    let rotated = std::fs::read_dir(&dir1)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".events.jsonl."))
        .count();
    assert!(rotated >= 1, "expected rotated event logs in {}", dir1.display());

    // The tentpole: logical reports byte-identical across worker counts.
    let logical = Options {
        logical_only: true,
        ..Options::default()
    };
    let report1 = analyze_path(&dir1, &logical).unwrap().to_json();
    let report4 = analyze_path(&dir4, &logical).unwrap().to_json();
    assert_eq!(report1, report4, "logical report depends on worker count");

    // Full-mode report: structural invariants hold on a real run.
    let full = analyze_path(&dir1, &Options::default()).unwrap();
    let group = &full.get("logical").unwrap().get("groups").unwrap().as_array().unwrap()[0];
    assert_eq!(group.get("rejected").unwrap().as_u64(), Some(0));
    assert_eq!(group.get("missing_seqs").unwrap().as_u64(), Some(0));
    assert_eq!(group.get("conflicting_seqs").unwrap().as_u64(), Some(0));
    let run = &group.get("runs").unwrap().as_array().unwrap()[0];
    assert_eq!(
        run.get("cells_seen").unwrap().as_u64(),
        Some(out1.cells_total as u64),
        "every cell must appear in the event stream"
    );
    assert_eq!(
        run.get("cells_declared").unwrap().as_u64(),
        Some(out1.cells_total as u64)
    );
    let structure = run.get("structure").unwrap();
    assert_eq!(structure.get("orphan_spans").unwrap().as_u64(), Some(0));
    assert_eq!(structure.get("campaign_mismatches").unwrap().as_u64(), Some(0));
    let milp = run.get("milp").unwrap();
    assert!(milp.get("solves").unwrap().as_u64().unwrap() > 0, "exact cells must solve");

    // Timing section reconciles: children never outlast their parent.
    let recon = full.get("timing").unwrap().get("reconciliation").unwrap();
    assert!(recon.get("parents_checked").unwrap().as_u64().unwrap() > 0);
    assert_eq!(recon.get("violations").unwrap().as_u64(), Some(0));
    // Every traced kind made it into the percentile table.
    let kinds = full.get("timing").unwrap().get("span_kinds").unwrap();
    for kind in ["exp.cell", "exp.replay", "exp.exact", "sim.run", "des.run", "milp.solve"] {
        assert!(kinds.get(kind).is_some(), "missing span kind {kind}");
    }

    // The campaign wrote a valid OpenMetrics snapshot alongside.
    let metrics_path = out4.metrics_path.expect("metrics written when a recorder is installed");
    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    dynp_rs::obs::expo::validate(&metrics).expect("exposition validates");
    assert!(metrics.contains("dynp_"), "metric names carry the dynp_ prefix");

    std::fs::remove_dir_all(&dir1).unwrap();
    std::fs::remove_dir_all(&dir4).unwrap();
}
