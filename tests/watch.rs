//! End-to-end checks of the `dynp-watch` live telemetry server: a real
//! campaign watched over HTTP must serve validator-clean OpenMetrics,
//! a /progress document that reaches done == total, the self-test alert
//! on /alerts, and tail-able /events — and the collapsed-stack profile
//! it produces must reconcile with the dynp-insight analysis of the
//! very same event log.
//!
//! The recorder is process-global, so every test takes `OBS_LOCK` and
//! installs a fresh recorder (the previous one is leaked by design).

use dynp_rs::obs::{self, expo, json, Recorder, Sink};
use dynp_rs::prelude::*;
use dynp_rs::watch::{default_rules, WatchServer};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn fresh_recorder() -> (&'static Recorder, MutexGuard<'static, ()>) {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let recorder = obs::install(Recorder::new(Sink::memory()));
    (recorder, guard)
}

fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "dynp_watch_{}_{}_{}",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One blocking HTTP/1.1 GET against the watch server; returns
/// `(status, body)`.
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to watch server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: watch\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn campaign_trace() -> Vec<Job> {
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: 6_000.0,
        ..CtcModel::default()
    };
    model.generate(220, 7).jobs
}

fn config(dir: &std::path::Path) -> CampaignConfig {
    CampaignConfig::new("watched", 64)
        .with_shard_seconds(WEEK_SECONDS / 2)
        .with_selectors(vec![
            SelectorSpec::Fixed(Policy::Fcfs),
            SelectorSpec::dynp(),
        ])
        .with_factors(vec![1.0, 2.0])
        .with_workers(2)
        .with_output_dir(dir)
}

#[test]
fn watched_campaign_serves_metrics_progress_alerts_and_a_reconciling_profile() {
    let (recorder, _guard) = fresh_recorder();
    recorder.set_profiling(true);

    // Fast tick so the alert rules evaluate many times within the test.
    let server = WatchServer::start_with_tick(
        ("127.0.0.1", 0),
        default_rules(),
        Duration::from_millis(20),
    )
    .expect("bind watch server");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status, 200);

    // Run a real (small) campaign while the server is up.
    let dir = unique_dir("campaign");
    let outcome = run_campaign(&campaign_trace(), &config(&dir)).expect("campaign runs");
    assert!(outcome.cells_total >= 8, "trace too small");

    // /metrics: validator-clean OpenMetrics carrying the progress gauges.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    expo::validate(&metrics).expect("live /metrics must satisfy the strict validator");
    assert!(metrics.contains("dynp_exp_cells_done"), "no progress gauges:\n{metrics}");
    assert!(metrics.contains("dynp_exp_cell_count"), "no cell histogram:\n{metrics}");

    // /progress: the campaign is over, so done == total, 100 %, ETA 0.
    let (status, progress) = get(addr, "/progress");
    assert_eq!(status, 200);
    let progress = json::parse(&progress).expect("progress is strict JSON");
    let field = |k: &str| progress.get(k).and_then(json::JsonValue::as_u64);
    assert_eq!(field("cells_done"), Some(outcome.cells_total as u64));
    assert_eq!(field("cells_total"), Some(outcome.cells_total as u64));
    assert_eq!(field("cells_inflight"), Some(0));
    let pct = progress.get("pct").and_then(json::JsonValue::as_f64);
    assert_eq!(pct, Some(100.0));
    let eta = progress.get("eta_secs").and_then(json::JsonValue::as_f64);
    assert_eq!(eta, Some(0.0), "finished campaign must report ETA 0");

    // /alerts: the self-test rule watches exp.cells_done > 0, so a
    // finished campaign is guaranteed to trip it within a few ticks.
    let deadline = Instant::now() + Duration::from_secs(5);
    let alerts = loop {
        let (status, alerts) = get(addr, "/alerts");
        assert_eq!(status, 200);
        json::validate(&alerts).expect("alerts are strict JSON");
        if alerts.contains("\"firing\":true") {
            break alerts;
        }
        assert!(Instant::now() < deadline, "self-test alert never fired:\n{alerts}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        alerts.contains("campaign-progress-selftest"),
        "unexpected firing rule:\n{alerts}"
    );

    // /events: tailing from seq 0 returns the campaign's event lines,
    // each spliced in verbatim, with a resumable cursor.
    let (status, events) = get(addr, "/events?since=0");
    assert_eq!(status, 200);
    let events = json::parse(&events).expect("events document is strict JSON");
    let lines = events
        .get("events")
        .and_then(json::JsonValue::as_array)
        .expect("events array");
    assert!(!lines.is_empty(), "no events tailed");
    let next = events.get("next").and_then(json::JsonValue::as_u64).expect("next cursor");
    assert!(next > 0);

    // Unknown paths and non-GET methods are refused.
    assert_eq!(get(addr, "/nope").0, 404);

    // Shutdown joins the threads and reports the fired totals.
    let summary = server.shutdown();
    let fired = summary
        .get("fired")
        .and_then(|f| f.get("campaign-progress-selftest"))
        .and_then(json::JsonValue::as_u64)
        .unwrap_or(0);
    assert!(fired >= 1, "summary lost the self-test alert: {}", summary.to_json());

    // The campaign wrote a non-empty collapsed-stack profile...
    let folded_path = outcome.folded_path.as_ref().expect("profiling was on");
    let folded = std::fs::read_to_string(folded_path).expect("folded file exists");
    let stacks = obs::profile::parse_folded(&folded).expect("inferno-compatible folded lines");
    assert!(!stacks.is_empty(), "empty profile");
    assert!(
        stacks.keys().any(|s| s.contains(';')),
        "no nested stacks — span parents were lost:\n{folded}"
    );

    // ...that reconciles exactly with the dynp-insight analysis of the
    // same run: folding the *event log* must reproduce the byte-identical
    // stack set, and parents must cover their children (no violations).
    let event_lines = recorder.events();
    let merged = dynp_rs::insight::merge_lines(
        "watch.events.jsonl",
        event_lines.iter().map(String::as_str),
    );
    let from_events = dynp_rs::insight::profile_groups(std::slice::from_ref(&merged));
    assert_eq!(from_events.violations, 0, "child self-times exceed a parent");
    assert!(from_events.parents_checked > 0);
    assert_eq!(
        obs::render_folded(&from_events),
        folded,
        "event-log fold and live profile hook disagree"
    );
    for (kind, stat) in &from_events.kinds {
        assert!(
            stat.total_ns >= stat.self_ns,
            "kind {kind}: self {} > total {}",
            stat.self_ns,
            stat.total_ns
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn events_long_poll_blocks_until_new_lines_arrive() {
    let (recorder, _guard) = fresh_recorder();
    let server = WatchServer::start_with_tick(
        ("127.0.0.1", 0),
        Vec::new(),
        Duration::from_millis(20),
    )
    .expect("bind watch server");
    let addr = server.local_addr();

    recorder.event("watch.seed").kv("n", 1u64).emit();
    let (_, first) = get(addr, "/events?since=0");
    let first = json::parse(&first).expect("strict JSON");
    let next = first.get("next").and_then(json::JsonValue::as_u64).expect("cursor");

    // A request past the current head long-polls; an event emitted while
    // it waits is delivered within the poll window.
    let writer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        obs::recorder().expect("installed").event("watch.late").kv("n", 2u64).emit();
    });
    let started = Instant::now();
    let (status, tail) = get(addr, &format!("/events?since={next}"));
    writer.join().unwrap();
    assert_eq!(status, 200);
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "long-poll returned before the event was emitted"
    );
    let tail = json::parse(&tail).expect("strict JSON");
    let lines = tail.get("events").and_then(json::JsonValue::as_array).expect("array");
    assert!(
        lines.iter().any(|l| l.to_json().contains("watch.late")),
        "late event not delivered: {}",
        tail.to_json()
    );

    server.shutdown();
}

#[test]
fn metrics_endpoint_matches_direct_exposition_rendering() {
    let (recorder, _guard) = fresh_recorder();
    recorder.counter("watch.requests").inc();
    recorder.gauge("watch.depth").set(3);
    recorder.histogram("watch.latency").record(1_500);

    let server = WatchServer::start(("127.0.0.1", 0), Vec::new()).expect("bind");
    let (status, body) = get(server.local_addr(), "/metrics");
    assert_eq!(status, 200);
    expo::validate(&body).expect("valid exposition");
    // The endpoint is a live render of the same recorder.
    assert_eq!(body, expo::render(recorder));
    server.shutdown();
}
