//! Crash-resume determinism of experiment campaigns (the tentpole
//! guarantee): killing a campaign mid-sweep and re-launching it must skip
//! the surviving cells and produce a final report **byte-identical** to
//! an uninterrupted run.

use dynp_rs::exp::checkpoint;
use dynp_rs::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "dynp_resume_{}_{}_{}",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn campaign_trace() -> Vec<Job> {
    // ~3 weeks at a load the 64-node machine can absorb: saturating it
    // grows the backlog (and the planner's work) quadratically, which a
    // debug-mode test cannot afford.
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: 6_000.0,
        ..CtcModel::default()
    };
    model.generate(300, 7).jobs
}

fn config(dir: &std::path::Path) -> CampaignConfig {
    CampaignConfig::new("resume", 64)
        .with_shard_seconds(WEEK_SECONDS / 2)
        .with_selectors(vec![
            SelectorSpec::Fixed(Policy::Fcfs),
            SelectorSpec::Fixed(Policy::Sjf),
            SelectorSpec::dynp(),
        ])
        .with_factors(vec![1.0, 2.0])
        .with_exact(Some(
            ExactConfig::new()
                .with_job_range(2, 8)
                .with_max_snapshots(1)
                .with_node_budget(150),
        ))
        .with_output_dir(dir)
}

#[test]
fn interrupted_campaign_resumes_to_a_byte_identical_report() {
    let jobs = campaign_trace();

    // Reference: one uninterrupted run.
    let dir_a = unique_dir("full");
    let full = run_campaign(&jobs, &config(&dir_a)).expect("campaign runs");
    assert!(full.cells_total >= 12, "trace too small: {}", full.cells_total);
    let report_json = std::fs::read(&full.report_json_path).unwrap();
    let report_text = std::fs::read(&full.report_text_path).unwrap();

    // Crash victim: run fully, then simulate dying mid-sweep by cutting
    // the checkpoint down to its first half and appending the torn tail
    // of a record (the write the "crash" interrupted). Reports vanish
    // with the crash too.
    let dir_b = unique_dir("crash");
    let first = run_campaign(&jobs, &config(&dir_b)).expect("campaign runs");
    let checkpoint_path = first.checkpoint_path.clone();
    let lines: Vec<String> = std::fs::read_to_string(&checkpoint_path)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(lines.len(), first.cells_total);
    let keep = lines.len() / 2;
    let mut truncated = lines[..keep].join("\n");
    truncated.push('\n');
    let torn = &lines[keep][..lines[keep].len() / 2];
    truncated.push_str(torn); // no trailing newline: a torn write
    std::fs::write(&checkpoint_path, truncated).unwrap();
    std::fs::remove_file(&first.report_json_path).unwrap();
    std::fs::remove_file(&first.report_text_path).unwrap();

    // Relaunch against the mutilated checkpoint.
    let resumed = run_campaign(&jobs, &config(&dir_b)).expect("resume runs");
    assert_eq!(resumed.cells_resumed, keep, "must trust exactly the intact records");
    assert_eq!(
        resumed.cells_computed,
        resumed.cells_total - keep,
        "must recompute exactly the lost cells"
    );
    assert_eq!(resumed.checkpoint_rejected, 1, "the torn line is dropped, not fatal");

    // The tentpole assertion: byte-identical reports.
    assert_eq!(
        std::fs::read(&resumed.report_json_path).unwrap(),
        report_json,
        "resumed JSON report differs from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&resumed.report_text_path).unwrap(),
        report_text,
        "resumed text report differs from the uninterrupted run"
    );

    // And the checkpoint healed: a third launch resumes everything.
    let third = run_campaign(&jobs, &config(&dir_b)).expect("third run");
    assert_eq!(third.cells_resumed, third.cells_total);
    assert_eq!(third.cells_computed, 0);

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn checkpoint_lines_are_self_validating() {
    let jobs = campaign_trace();
    let dir = unique_dir("lines");
    let outcome = run_campaign(&jobs, &config(&dir)).expect("campaign runs");
    let text = std::fs::read_to_string(&outcome.checkpoint_path).unwrap();
    for line in text.lines() {
        let (cell, data) =
            checkpoint::decode_line(line, &outcome.fingerprint).expect("every line validates");
        assert!(cell < outcome.cells_total);
        // Each record is itself strict JSON with the paper quantities.
        assert!(data.get("sldwa").is_some());
        assert!(data.get("selector").is_some());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
