//! Crash-resume determinism of experiment campaigns (the tentpole
//! guarantee): killing a campaign mid-sweep and re-launching it must skip
//! the surviving cells and produce a final report **byte-identical** to
//! an uninterrupted run.

use dynp_rs::exp::checkpoint;
use dynp_rs::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "dynp_resume_{}_{}_{}",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn campaign_trace() -> Vec<Job> {
    // ~3 weeks at a load the 64-node machine can absorb: saturating it
    // grows the backlog (and the planner's work) quadratically, which a
    // debug-mode test cannot afford.
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: 6_000.0,
        ..CtcModel::default()
    };
    model.generate(300, 7).jobs
}

fn config(dir: &std::path::Path) -> CampaignConfig {
    CampaignConfig::new("resume", 64)
        .with_shard_seconds(WEEK_SECONDS / 2)
        .with_selectors(vec![
            SelectorSpec::Fixed(Policy::Fcfs),
            SelectorSpec::Fixed(Policy::Sjf),
            SelectorSpec::dynp(),
        ])
        .with_factors(vec![1.0, 2.0])
        .with_exact(Some(
            ExactConfig::new()
                .with_job_range(2, 8)
                .with_max_snapshots(1)
                .with_node_budget(150),
        ))
        .with_output_dir(dir)
}

#[test]
fn interrupted_campaign_resumes_to_a_byte_identical_report() {
    let jobs = campaign_trace();

    // Reference: one uninterrupted run.
    let dir_a = unique_dir("full");
    let full = run_campaign(&jobs, &config(&dir_a)).expect("campaign runs");
    assert!(full.cells_total >= 12, "trace too small: {}", full.cells_total);
    let report_json = std::fs::read(&full.report_json_path).unwrap();
    let report_text = std::fs::read(&full.report_text_path).unwrap();

    // Crash victim: run fully, then simulate dying mid-sweep by cutting
    // the checkpoint down to its first half and appending the torn tail
    // of a record (the write the "crash" interrupted). Reports vanish
    // with the crash too.
    let dir_b = unique_dir("crash");
    let first = run_campaign(&jobs, &config(&dir_b)).expect("campaign runs");
    let checkpoint_path = first.checkpoint_path.clone();
    let lines: Vec<String> = std::fs::read_to_string(&checkpoint_path)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(lines.len(), first.cells_total);
    let keep = lines.len() / 2;
    let mut truncated = lines[..keep].join("\n");
    truncated.push('\n');
    let torn = &lines[keep][..lines[keep].len() / 2];
    truncated.push_str(torn); // no trailing newline: a torn write
    std::fs::write(&checkpoint_path, truncated).unwrap();
    std::fs::remove_file(&first.report_json_path).unwrap();
    std::fs::remove_file(&first.report_text_path).unwrap();

    // Relaunch against the mutilated checkpoint.
    let resumed = run_campaign(&jobs, &config(&dir_b)).expect("resume runs");
    assert_eq!(resumed.cells_resumed, keep, "must trust exactly the intact records");
    assert_eq!(
        resumed.cells_computed,
        resumed.cells_total - keep,
        "must recompute exactly the lost cells"
    );
    assert_eq!(resumed.checkpoint_rejected, 1, "the torn line is dropped, not fatal");

    // The tentpole assertion: byte-identical reports.
    assert_eq!(
        std::fs::read(&resumed.report_json_path).unwrap(),
        report_json,
        "resumed JSON report differs from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&resumed.report_text_path).unwrap(),
        report_text,
        "resumed text report differs from the uninterrupted run"
    );

    // And the checkpoint healed: a third launch resumes everything.
    let third = run_campaign(&jobs, &config(&dir_b)).expect("third run");
    assert_eq!(third.cells_resumed, third.cells_total);
    assert_eq!(third.cells_computed, 0);

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn fault_injected_campaign_resumes_to_a_byte_identical_report() {
    // A smaller trace and no exact solves: the point here is the failure
    // model, and replay-only cells finish microseconds under the 400 ms
    // deadline even in debug mode, so only injected faults degrade cells.
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: 12_000.0,
        ..CtcModel::default()
    };
    let jobs = model.generate(120, 11).jobs;
    let config = |dir: &std::path::Path| {
        CampaignConfig::new("fault-resume", 64)
            .with_shard_seconds(WEEK_SECONDS / 2)
            .with_selectors(vec![SelectorSpec::Fixed(Policy::Fcfs), SelectorSpec::dynp()])
            .with_factors(vec![1.0])
            .with_exact(None)
            .with_workers(1)
            .with_cell_deadline(std::time::Duration::from_millis(400))
            .with_retries(1)
            .with_faults(
                FaultPlan::none()
                    // Cell 0 stays crashed through its retry.
                    .inject(0, FaultKind::Panic, u32::MAX)
                    // Cell 1 crashes once and recovers on the retry.
                    .inject(1, FaultKind::Panic, 1)
                    // Cell 2 computes but its checkpoint append is eaten.
                    .inject(2, FaultKind::CheckpointIo, u32::MAX)
                    // Cell 3 sleeps past the deadline on every attempt.
                    .inject(3, FaultKind::Delay(std::time::Duration::from_secs(600)), u32::MAX),
            )
            .with_output_dir(dir)
    };

    let dir = unique_dir("faults");
    let first = run_campaign(&jobs, &config(&dir)).expect("faulted campaign still exits ok");
    assert!(first.cells_total >= 4, "trace too small: {}", first.cells_total);
    assert_eq!(first.cells_crashed, 1, "only cell 0 stays crashed");
    assert_eq!(first.cells_timed_out, 1, "only cell 3 stays timed out");
    let report_json = std::fs::read(&first.report_json_path).unwrap();
    let report_text = std::fs::read(&first.report_text_path).unwrap();

    // The checkpoint records the whole story: the crash with its payload
    // and retry count, the healed cell, and no record at all for the
    // io-faulted cell.
    let loaded = checkpoint::load(&first.checkpoint_path, &first.fingerprint).unwrap();
    let status = |cell: usize| {
        loaded.cells[&cell]
            .get("status")
            .and_then(|s| s.as_str())
            .unwrap_or("ok")
            .to_string()
    };
    let attempts =
        |cell: usize| loaded.cells[&cell].get("attempts").and_then(|a| a.as_u64()).unwrap();
    assert_eq!(status(0), "crashed");
    assert_eq!(attempts(0), 2, "one retry before giving up");
    assert_eq!(status(1), "ok");
    assert_eq!(attempts(1), 2, "healed on the second attempt");
    assert!(!loaded.cells.contains_key(&2), "injected i/o fault ate the record");
    assert_eq!(status(3), "timed_out");

    // Crash-resume on top of the degraded checkpoint: keep the first
    // half (which includes the degraded records), tear the next line,
    // delete the reports, relaunch.
    let lines: Vec<String> = std::fs::read_to_string(&first.checkpoint_path)
        .unwrap()
        .lines()
        .map(String::from)
        .collect();
    let keep = lines.len() / 2;
    let mut truncated = lines[..keep].join("\n");
    truncated.push('\n');
    truncated.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&first.checkpoint_path, truncated).unwrap();
    std::fs::remove_file(&first.report_json_path).unwrap();
    std::fs::remove_file(&first.report_text_path).unwrap();

    let resumed = run_campaign(&jobs, &config(&dir)).expect("resume runs");
    assert_eq!(resumed.cells_resumed, keep);
    // Degraded outcomes are part of the resumed census too.
    assert_eq!(resumed.cells_crashed, 1);
    assert_eq!(resumed.cells_timed_out, 1);

    // The tentpole assertion, now under faults: byte-identical reports.
    assert_eq!(
        std::fs::read(&resumed.report_json_path).unwrap(),
        report_json,
        "fault-degraded resumed JSON report differs"
    );
    assert_eq!(
        std::fs::read(&resumed.report_text_path).unwrap(),
        report_text,
        "fault-degraded resumed text report differs"
    );

    // A third launch trusts everything except the io-faulted cell, which
    // is recomputed on every run by construction.
    let third = run_campaign(&jobs, &config(&dir)).expect("third run");
    assert_eq!(third.cells_resumed, third.cells_total - 1);
    assert_eq!(third.cells_computed, 1);
    assert_eq!(std::fs::read(&third.report_json_path).unwrap(), report_json);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_lines_are_self_validating() {
    let jobs = campaign_trace();
    let dir = unique_dir("lines");
    let outcome = run_campaign(&jobs, &config(&dir)).expect("campaign runs");
    let text = std::fs::read_to_string(&outcome.checkpoint_path).unwrap();
    for line in text.lines() {
        let (cell, data) =
            checkpoint::decode_line(line, &outcome.fingerprint).expect("every line validates");
        assert!(cell < outcome.cells_total);
        // Each record is itself strict JSON with the paper quantities.
        assert!(data.get("sldwa").is_some());
        assert!(data.get("selector").is_some());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
