//! Differential acceptance test for the planner hot-path overhaul: the
//! optimized planner (shared availability profile, `compress_before`
//! prefix compression, skip-scan `earliest_fit`, parallel per-policy
//! planning) must produce schedules **bit-identical** to the pre-overhaul
//! planner — same starts, same entry order — for every policy on every
//! snapshot a synthetic CTC run produces.
//!
//! The reference implementation below is a faithful transcription of the
//! pre-overhaul code path: the availability profile is rebuilt from the
//! snapshot for every plan, and `earliest_fit` restarts segment by
//! segment with a fresh binary search after each blocking segment.

use dynp_rs::prelude::*;
use dynp_rs::sched::{plan, Reservation, ScheduleEntry};
use dynp_rs::sim::SnapshotFilter;

/// Pre-overhaul `ResourceProfile::earliest_fit`: restart at the next
/// segment after any blocking one, re-running the entry binary search.
fn earliest_fit_reference(
    profile: &ResourceProfile,
    earliest: u64,
    duration: u64,
    width: u32,
) -> Option<u64> {
    if width > profile.capacity() {
        return None;
    }
    if width == 0 {
        return Some(earliest);
    }
    let steps = profile.steps();
    let mut t = earliest;
    'outer: loop {
        let end = t.saturating_add(duration.max(1));
        let first = steps.partition_point(|&(time, _)| time <= t) - 1;
        for (i, &(time, free)) in steps[first..].iter().enumerate() {
            if time >= end {
                break;
            }
            if free < width {
                let seg = first + i;
                match steps.get(seg + 1) {
                    Some(&(next_time, _)) => {
                        t = next_time;
                        continue 'outer;
                    }
                    None => return None,
                }
            }
        }
        return Some(t);
    }
}

/// Pre-overhaul `plan`: per-call profile rebuild, entries pushed in policy
/// order.
fn plan_reference(problem: &SchedulingProblem, policy: Policy) -> Schedule {
    let mut profile = problem.availability_profile();
    let mut schedule = Schedule::new();
    for job in policy.order(&problem.jobs) {
        let duration = job.estimated_duration.max(1);
        let start = earliest_fit_reference(&profile, problem.now, duration, job.width)
            .expect("job fits the machine");
        profile.allocate(start, start + duration, job.width);
        schedule.push(ScheduleEntry {
            id: job.id,
            start,
            end: start + duration,
            width: job.width,
        });
    }
    schedule
}

/// Asserts bit-identical schedules for every policy on one snapshot, and
/// that a full `SelfTuning::step` returns the reference plan of its chosen
/// policy with reference metric values.
fn assert_planner_equivalence(problem: &SchedulingProblem) {
    for policy in Policy::ALL {
        let optimized = plan(problem, policy).expect("plannable snapshot");
        let reference = plan_reference(problem, policy);
        // Schedule equality covers starts, ends, widths AND entry order.
        assert_eq!(
            optimized, reference,
            "{policy:?}: optimized and reference schedules differ at now={}, {} jobs",
            problem.now,
            problem.len()
        );
    }
    let mut tuner = SelfTuning::paper_config(Metric::SldwA);
    let out = tuner.step(problem).expect("plannable snapshot");
    assert_eq!(
        out.schedule,
        plan_reference(problem, out.chosen),
        "SelfTuning::step schedule differs from the reference plan"
    );
    for (policy, value) in &out.evaluations {
        let reference_value = Metric::SldwA.eval(problem, &plan_reference(problem, *policy));
        // Bitwise equality: also holds for NaN (a zero-estimate job makes
        // slowdown divide by zero in both implementations identically).
        assert_eq!(
            value.to_bits(),
            reference_value.to_bits(),
            "{policy:?}: evaluation differs from reference ({value} vs {reference_value})"
        );
    }
}

#[test]
fn synthetic_ctc_snapshots_plan_bit_identically() {
    // Several machine sizes and seeds; snapshots taken at every
    // self-tuning step with at least one waiting job.
    for (n_jobs, seed, nodes) in [(200usize, 11u64, 64u32), (150, 23, 32), (120, 5, 430)] {
        let model = CtcModel {
            nodes,
            mean_interarrival: 60.0,
            ..CtcModel::default()
        };
        let trace = model.generate(n_jobs, seed);
        let run = simulate(
            &trace.jobs,
            SelfTuning::paper_config(Metric::SldwA),
            SimConfig::new(trace.machine_size).with_snapshots(SnapshotFilter {
                min_jobs: 1,
                max_count: 40,
                ..SnapshotFilter::default()
            }),
        );
        assert!(
            !run.snapshots.is_empty(),
            "trace (n={n_jobs}, seed={seed}) produced no snapshots"
        );
        for snap in &run.snapshots {
            assert_planner_equivalence(&snap.problem);
        }
    }
}

#[test]
fn handcrafted_edge_snapshots_plan_bit_identically() {
    // Busy machine observed mid-run, off-grid release times.
    let history = MachineHistory::build(16, 100, &[(7, 290), (4, 1333), (2, 505)]);
    let mut problem = SchedulingProblem::new(
        100,
        history,
        vec![
            Job::exact(0, 40, 9, 600),
            Job::exact(1, 80, 16, 50),
            Job::exact(2, 90, 1, 10_000),
            Job::exact(3, 95, 5, 1),
            // Zero estimated duration: the planner treats it as one second.
            Job {
                estimated_duration: 0,
                ..Job::exact(4, 99, 3, 1)
            },
        ],
    );
    assert_planner_equivalence(&problem);

    // The same snapshot with an admitted full-machine reservation (after
    // the running jobs drain at t=1333, so capacity allows it).
    problem.reservations.push(Reservation {
        id: 0,
        start: 1500,
        end: 2000,
        width: 16,
    });
    assert_planner_equivalence(&problem);

    // Deep queue of identical jobs (exercises long blocking runs).
    let deep = SchedulingProblem::on_empty_machine(
        0,
        8,
        (0..120).map(|i| Job::exact(i, 0, 5, 60)).collect(),
    );
    assert_planner_equivalence(&deep);

    // Single job, empty machine.
    let trivial = SchedulingProblem::on_empty_machine(7, 4, vec![Job::exact(0, 3, 4, 42)]);
    assert_planner_equivalence(&trivial);
}
