//! Cross-crate integration tests: full traces through the simulator, and
//! snapshots through the exact pipeline, checking system-level invariants.

use dynp_rs::milp::{solve_snapshot, BranchLimits, MipStatus, SolveConfig};
use dynp_rs::prelude::*;
use dynp_rs::sim::SnapshotFilter;

fn trace(n: usize, seed: u64, nodes: u32) -> (Vec<Job>, u32) {
    let model = CtcModel {
        nodes,
        mean_interarrival: 100.0,
        ..CtcModel::default()
    };
    let t = model.generate(n, seed);
    (t.jobs, t.machine_size)
}

#[test]
fn every_selector_completes_every_job() {
    let (jobs, size) = trace(250, 1, 64);
    for policy in Policy::PAPER_SET {
        let run = simulate(&jobs, FixedPolicy(policy), SimConfig::new(size));
        assert_eq!(run.records.len(), jobs.len(), "{policy} dropped jobs");
    }
    let run = simulate(
        &jobs,
        SelfTuning::paper_config(Metric::SldwA),
        SimConfig::new(size),
    );
    assert_eq!(run.records.len(), jobs.len());
}

#[test]
fn conservation_of_work() {
    // Total resource-seconds delivered equals the trace's effective work,
    // regardless of the scheduling policy.
    let (jobs, size) = trace(150, 2, 64);
    let expected: u64 = jobs
        .iter()
        .map(|j| j.width as u64 * j.effective_duration())
        .sum();
    for policy in Policy::PAPER_SET {
        let run = simulate(&jobs, FixedPolicy(policy), SimConfig::new(size));
        let delivered: u64 = run.records.iter().map(|r| r.area()).sum();
        assert_eq!(delivered, expected, "{policy} lost work");
    }
}

#[test]
fn no_job_starts_before_submission_or_overlaps_capacity() {
    let (jobs, size) = trace(200, 3, 32);
    let run = simulate(&jobs, FixedPolicy(Policy::Sjf), SimConfig::new(size));
    for r in &run.records {
        assert!(r.start >= r.submit);
        assert!(r.end > r.start);
    }
    // Event-sweep capacity check over the whole run.
    let mut events: Vec<(u64, i64)> = Vec::new();
    for r in &run.records {
        events.push((r.start, r.width as i64));
        events.push((r.end, -(r.width as i64)));
    }
    events.sort_unstable();
    let mut usage = 0i64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            usage += events[i].1;
            i += 1;
        }
        assert!(
            usage <= size as i64,
            "machine overcommitted at t={t}: {usage} > {size}"
        );
    }
}

#[test]
fn dynp_is_never_catastrophically_worse_than_best_fixed_policy() {
    let (jobs, size) = trace(400, 4, 64);
    let best_fixed = Policy::PAPER_SET
        .iter()
        .map(|&p| {
            simulate(&jobs, FixedPolicy(p), SimConfig::new(size))
                .summary
                .sldwa
        })
        .fold(f64::INFINITY, f64::min);
    let dynp = simulate(
        &jobs,
        SelfTuning::paper_config(Metric::SldwA),
        SimConfig::new(size),
    );
    assert!(
        dynp.summary.sldwa <= best_fixed * 1.25,
        "dynP SLDwA {} vs best fixed {best_fixed}",
        dynp.summary.sldwa
    );
}

#[test]
fn snapshots_replan_identically_offline() {
    // A snapshot captured during simulation must yield exactly the
    // schedule the simulator planned: same planner, same data.
    let (jobs, size) = trace(120, 5, 32);
    let run = simulate(
        &jobs,
        SelfTuning::paper_config(Metric::SldwA),
        SimConfig::new(size).with_snapshots(SnapshotFilter {
            min_jobs: 2,
            max_count: 20,
            ..SnapshotFilter::default()
        }),
    );
    assert!(!run.snapshots.is_empty());
    for snap in &run.snapshots {
        snap.problem.validate().unwrap();
        let schedule = plan(&snap.problem, snap.chosen).unwrap();
        schedule.validate(&snap.problem).unwrap();
    }
}

#[test]
fn exact_solver_weakly_improves_on_every_policy() {
    // On snapshots solved to optimality with a fine grid and lossless
    // durations, the ILP schedule (compacted) can never have a worse
    // SLDwA than any policy schedule.
    let jobs: Vec<Job> = vec![
        Job::exact(0, 0, 8, 1200),
        Job::exact(1, 0, 2, 600),
        Job::exact(2, 0, 3, 600),
        Job::exact(3, 0, 5, 1800),
        Job::exact(4, 0, 1, 2400),
    ];
    let problem = SchedulingProblem::on_empty_machine(0, 8, jobs);
    let config = SolveConfig {
        scale_override: Some(60),
        limits: BranchLimits::default(),
        ..SolveConfig::default()
    };
    let run = solve_snapshot(&problem, &config).expect("snapshot has waiting jobs");
    assert_eq!(run.status, MipStatus::Optimal);
    let exact = run.comparison().expect("optimal solve has a schedule").exact_value;
    for policy in Policy::PAPER_SET {
        let value = Metric::SldwA.eval(&problem, &plan(&problem, policy).unwrap());
        assert!(
            exact <= value + 1e-9,
            "exact {exact} worse than {policy} {value}"
        );
    }
}

#[test]
fn exact_schedule_is_valid_against_snapshot() {
    let history = MachineHistory::build(8, 50, &[(5, 400)]);
    let problem = SchedulingProblem::new(
        50,
        history,
        vec![
            Job::exact(0, 10, 4, 600),
            Job::exact(1, 20, 6, 300),
            Job::exact(2, 30, 2, 900),
        ],
    );
    let run = solve_snapshot(
        &problem,
        &SolveConfig {
            scale_override: Some(60),
            ..SolveConfig::default()
        },
    )
    .expect("snapshot has waiting jobs");
    let schedule = run.comparison().expect("solved").schedule;
    schedule.validate(&problem).unwrap();
}

#[test]
fn tune_on_finish_variant_also_completes() {
    let (jobs, size) = trace(150, 6, 32);
    let config = SimConfig::new(size).with_tune_on_finish(true);
    let run = simulate(&jobs, SelfTuning::paper_config(Metric::SldwA), config);
    assert_eq!(run.records.len(), jobs.len());
    // Tuning on completions adds selection points beyond submissions.
    assert!(run.policy_log.len() >= jobs.len());
}

#[test]
fn different_metrics_drive_different_tuning() {
    let (jobs, size) = trace(300, 7, 32);
    let by_sld = simulate(
        &jobs,
        SelfTuning::paper_config(Metric::SldwA),
        SimConfig::new(size),
    );
    let by_art = simulate(
        &jobs,
        SelfTuning::paper_config(Metric::ArtwW),
        SimConfig::new(size),
    );
    // Both complete; the tuning traces usually differ.
    assert_eq!(by_sld.records.len(), jobs.len());
    assert_eq!(by_art.records.len(), jobs.len());
}

#[test]
fn overrunning_jobs_are_killed_at_their_estimate() {
    // CCS semantics: a job exceeding its estimate is terminated at the
    // reservation end, so its successors start exactly on time.
    let jobs = vec![
        Job::new(0, 0, 4, 100, 500), // claims 100 s, would run 500 s
        Job::exact(1, 0, 4, 50),
    ];
    let run = simulate(&jobs, FixedPolicy(Policy::Fcfs), SimConfig::new(4));
    let mut records = run.records.clone();
    records.sort_by_key(|r| r.id);
    assert_eq!(records[0].end, 100, "overrunning job not capped");
    assert_eq!(records[1].start, 100);
}

#[test]
fn underrunning_jobs_free_resources_early() {
    let jobs = vec![
        Job::new(0, 0, 4, 10_000, 100), // massive over-estimation
        Job::exact(1, 0, 4, 50),
    ];
    let run = simulate(&jobs, FixedPolicy(Policy::Fcfs), SimConfig::new(4));
    let mut records = run.records.clone();
    records.sort_by_key(|r| r.id);
    assert_eq!(records[0].end, 100);
    assert_eq!(records[1].start, 100, "successor did not move forward");
}

#[test]
fn utilization_timeline_matches_summary() {
    let (jobs, size) = trace(100, 8, 32);
    let run = simulate(&jobs, FixedPolicy(Policy::Fcfs), SimConfig::new(size));
    let timeline = dynp_rs::sim::utilization_timeline(&run.records, size);
    assert!(!timeline.is_empty());
    // Integrate the step function and compare against the summary.
    let first = run.records.iter().map(|r| r.submit).min().unwrap();
    let mut area = 0.0;
    for w in timeline.windows(2) {
        area += w[0].1 * (w[1].0 - w[0].0) as f64;
    }
    let span = (timeline.last().unwrap().0 - first) as f64;
    let integrated = area / span;
    assert!(
        (integrated - run.summary.utilization).abs() < 0.05,
        "timeline {integrated} vs summary {}",
        run.summary.utilization
    );
    // Utilization never exceeds 1.
    assert!(timeline
        .iter()
        .all(|&(_, u)| (0.0..=1.0 + 1e-9).contains(&u)));
}

#[test]
fn conclusions_hold_on_a_second_workload_model() {
    // Workload-robustness check: replaying a Lublin-style workload (instead
    // of the CTC model) must preserve the paper's qualitative conclusion —
    // dynP tracks close to the best fixed policy.
    let model = dynp_rs::trace::LublinModel {
        nodes: 64,
        peak_arrivals_per_hour: 40.0,
        ..dynp_rs::trace::LublinModel::default()
    };
    let t = model.generate(300, 21);
    let best_fixed = Policy::PAPER_SET
        .iter()
        .map(|&p| {
            simulate(&t.jobs, FixedPolicy(p), SimConfig::new(t.machine_size))
                .summary
                .sldwa
        })
        .fold(f64::INFINITY, f64::min);
    let dynp = simulate(
        &t.jobs,
        SelfTuning::paper_config(Metric::SldwA),
        SimConfig::new(t.machine_size),
    );
    assert_eq!(dynp.records.len(), 300);
    assert!(
        dynp.summary.sldwa <= best_fixed * 1.25,
        "dynP {} vs best fixed {best_fixed} on Lublin workload",
        dynp.summary.sldwa
    );
}
