//! Watching dynP switch policies as workload characteristics change.
//!
//! Builds a workload with three distinct phases — a flood of short serial
//! jobs, then long massively-parallel production jobs, then a mix — and
//! traces which policy the self-tuning dynP scheduler selects in each
//! phase. This is the scenario from the paper's introduction: "some users
//! primarily submit parallel and long running jobs, while others submit
//! hundreds of short and sequential jobs."
//!
//! Run with: `cargo run --release --example policy_switching`

use dynp_rs::prelude::*;

/// Hand-built three-phase workload on a small machine.
fn phased_workload() -> Vec<Job> {
    let mut jobs = Vec::new();
    let mut id = 0u32;
    let mut push = |submit: u64, width: u32, duration: u64, jobs: &mut Vec<Job>| {
        jobs.push(Job::exact(id, submit, width, duration));
        id += 1;
    };
    // Phase 1 (t = 0 .. 2h): a parameter study — many short serial jobs
    // plus one long wide job clogging the machine; SJF should win.
    push(0, 14, 7_200, &mut jobs);
    for k in 0..40 {
        push(10 + k * 30, 1, 300 + (k % 5) * 60, &mut jobs);
    }
    // Phase 2 (t = 3h .. 8h): long production jobs; LJF packs them best.
    for k in 0..12 {
        push(10_800 + k * 600, 8, 14_400 + (k % 3) * 3_600, &mut jobs);
    }
    // Phase 3 (t = 12h ..): a balanced mix.
    for k in 0..30 {
        let (w, d) = match k % 3 {
            0 => (1, 900),
            1 => (4, 3_600),
            _ => (8, 7_200),
        };
        push(43_200 + k * 400, w, d, &mut jobs);
    }
    jobs
}

fn main() {
    let jobs = phased_workload();
    let machine = 16;
    println!(
        "three-phase workload: {} jobs on {machine} nodes",
        jobs.len()
    );

    let run = simulate(
        &jobs,
        SelfTuning::paper_config(Metric::SldwA),
        SimConfig::new(machine),
    );

    println!();
    println!("--- policy chosen at each self-tuning step (compressed) ---");
    let mut last: Option<Policy> = None;
    for &(time, policy) in &run.policy_log {
        if last != Some(policy) {
            let hours = time as f64 / 3600.0;
            println!("  t = {hours:>5.1} h  ->  {policy}");
            last = Some(policy);
        }
    }

    let stats = run.selector.stats();
    println!();
    println!(
        "switches: {} over {} steps ({:.0}% switch rate)",
        stats.switches(),
        stats.steps(),
        stats.switch_rate() * 100.0
    );
    println!();
    println!("--- per-policy residency ---");
    let total: u64 = stats.residency().values().sum::<u64>().max(1);
    for policy in Policy::PAPER_SET {
        let seconds = stats.residency().get(&policy).copied().unwrap_or(0);
        println!(
            "  {:<5} {:>7.1} h ({:>4.1}%)",
            policy.name(),
            seconds as f64 / 3600.0,
            100.0 * seconds as f64 / total as f64
        );
    }
    println!();
    println!("run summary:\n{}", run.summary);
}
