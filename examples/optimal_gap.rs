//! How far is a scheduling policy from the optimum? (§3–§4 of the paper.)
//!
//! Takes one quasi-off-line snapshot — a machine with running jobs and a
//! waiting queue — plans it with each basic policy, then solves the
//! time-indexed integer program exactly (the paper's CPLEX step) and
//! reports the Eq. 7 quality of each policy against the exact schedule.
//!
//! Run with: `cargo run --release --example optimal_gap`

use dynp_rs::milp::{solve_snapshot, SolveConfig};
use dynp_rs::prelude::*;
use dynp_rs::sched::metrics::quality;

fn main() -> Result<(), dynp_rs::Error> {
    // A contended snapshot: 3 of 16 nodes still busy, 8 waiting jobs with
    // very mixed shapes (this is where policy choice matters).
    let history = MachineHistory::build(16, 0, &[(3, 1_700)]);
    let jobs = vec![
        Job::exact(0, 0, 16, 7_200), // full-machine, 2 h
        Job::exact(1, 0, 1, 600),    // serial 10 min
        Job::exact(2, 0, 1, 600),
        Job::exact(3, 0, 4, 3_600), // quarter machine, 1 h
        Job::exact(4, 0, 8, 1_800), // half machine, 30 min
        Job::exact(5, 0, 2, 900),
        Job::exact(6, 0, 13, 2_400),
        Job::exact(7, 0, 1, 10_800), // serial 3 h
    ];
    let problem = SchedulingProblem::new(0, history, jobs);

    println!(
        "snapshot: {} waiting jobs on a 16-node machine",
        problem.len()
    );
    println!();
    println!("--- policy schedules (SLDwA, planned) ---");
    for policy in Policy::PAPER_SET {
        let schedule = plan(&problem, policy).unwrap();
        let sldwa = Metric::SldwA.eval(&problem, &schedule);
        let makespan = Metric::Makespan.eval(&problem, &schedule);
        println!(
            "  {:<5} SLDwA {:>6.3}   makespan {:>6.0} s",
            policy.name(),
            sldwa,
            makespan
        );
    }

    // The exact solve: 5-minute slots. Every duration in this snapshot is
    // a multiple of 300 s, so the grid loses only start-time alignment —
    // which the §3.2 compaction reclaims.
    println!();
    println!("--- exact time-indexed ILP (the paper's CPLEX step) ---");
    let config = SolveConfig {
        scale_override: Some(300),
        limits: dynp_rs::milp::BranchLimits {
            max_nodes: 50_000,
            time_limit: Some(std::time::Duration::from_secs(60)),
            ..Default::default()
        },
        ..SolveConfig::default()
    };
    let run = solve_snapshot(&problem, &config)?;
    println!(
        "  model: {} variables, {} constraints, scale {} s",
        run.num_variables, run.num_constraints, run.time_scale
    );
    println!(
        "  search: {:?} after {} nodes, {} LP iterations, {:.2} s",
        run.status,
        run.nodes,
        run.lp_iterations,
        run.solve_time.as_secs_f64()
    );
    // The supported way to read the exact side: `comparison()` is `Err`
    // when the budget expired without an incumbent ("CPLEX still
    // running"), which is an outcome, not a crash.
    let exact = match run.comparison() {
        Ok(cmp) => cmp.exact_value,
        Err(incomplete) => {
            println!("  {incomplete}; raise the node budget to compare");
            return Ok(());
        }
    };
    println!("  exact SLDwA (after compaction): {exact:.3}");

    println!();
    println!("--- Eq. 7 quality per policy ---");
    for policy in Policy::PAPER_SET {
        let schedule = plan(&problem, policy).unwrap();
        let value = Metric::SldwA.eval(&problem, &schedule);
        let q = quality(Metric::SldwA, exact, value);
        println!(
            "  {:<5} quality {:>6.3}   performance lost {:>5.1}%",
            policy.name(),
            q,
            (1.0 - q) * 100.0
        );
    }
    println!();
    println!(
        "best policy {} reaches quality {:.3}; the paper reports dynP's best\n\
         policy within ~1% of CPLEX on average (Table 1).",
        run.best_policy,
        quality(Metric::SldwA, exact, run.best_policy_value)
    );
    Ok(())
}
