//! Advance reservations on a planning-based RMS — the workflow §3 of the
//! paper uses to argue that schedule updates must be *fast*: "a request
//! for a reservation is submitted right after. An answer is expected
//! immediately as other reservation requests might depend on the
//! acceptance of this request."
//!
//! Admits a chain of reservation requests against a loaded machine,
//! measures the admission latency, and shows jobs planning around the
//! granted windows.
//!
//! Run with: `cargo run --release --example reservations`

use dynp_rs::prelude::*;
use dynp_rs::sched::{admit, AdmissionRule, ReservationRequest};
use std::time::Instant;

fn main() {
    // A 64-node machine, half busy, with a realistic waiting queue.
    let history = MachineHistory::build(64, 0, &[(20, 3_000), (12, 5_400)]);
    let jobs: Vec<Job> = (0..18)
        .map(|i| Job::exact(i, 0, 1 + (i * 5) % 32, 600 + (i as u64 * 700) % 7_200))
        .collect();
    let mut problem = SchedulingProblem::new(0, history, jobs);
    println!(
        "machine: 64 nodes, {} busy now; {} waiting jobs",
        64 - problem.availability_profile().free_at(0),
        problem.len()
    );

    // A user asks for three dependent reservations (e.g. a co-allocated
    // grid workflow): each may only be requested once the previous one is
    // granted — the paper's "other reservation requests might depend on
    // the acceptance of this request".
    let requests = [
        ReservationRequest {
            width: 32,
            duration: 1_800,
            earliest: 0,
        },
        ReservationRequest {
            width: 64,
            duration: 900,
            earliest: 7_200,
        },
        ReservationRequest {
            width: 16,
            duration: 3_600,
            earliest: 10_800,
        },
    ];

    println!();
    println!("--- admitting reservations (jobs keep their planned slots) ---");
    for (k, request) in requests.iter().enumerate() {
        let t0 = Instant::now();
        let granted = admit(
            &problem,
            AdmissionRule::AroundPlannedJobs(Policy::Fcfs),
            *request,
        )
        .expect("machine is large enough");
        let latency = t0.elapsed();
        println!(
            "  request {k}: {}x{}s earliest {:>6} -> granted [{:>6}, {:>6})  ({:?})",
            request.width, request.duration, request.earliest, granted.start, granted.end, latency
        );
        problem.reservations.push(granted);
    }
    problem.validate().unwrap();

    // Re-plan the waiting jobs around all granted windows.
    println!();
    println!("--- jobs planned around the reservations (FCFS) ---");
    let schedule = plan(&problem, Policy::Fcfs).unwrap();
    schedule.validate(&problem).unwrap();
    let mut entries = schedule.start_order();
    entries.truncate(8);
    for e in &entries {
        println!(
            "  job {:>2}  width {:>2}  planned [{:>6}, {:>6})",
            e.id, e.width, e.start, e.end
        );
    }
    println!("  ... ({} jobs total, all validated)", schedule.len());

    // The punchline of §3: the whole admission path runs in planner time —
    // microseconds to milliseconds — while the exact ILP takes seconds to
    // hours, which is why optimal schedules are impractical online.
    println!();
    let t0 = Instant::now();
    let n_trials = 100;
    for _ in 0..n_trials {
        std::hint::black_box(plan(&problem, Policy::Fcfs).unwrap());
    }
    println!(
        "full re-plan of {} jobs + {} reservations: {:?} per call",
        problem.len(),
        problem.reservations.len(),
        t0.elapsed() / n_trials
    );
}
