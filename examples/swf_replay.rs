//! Replaying a real Parallel-Workloads-Archive trace (SWF format).
//!
//! Reads an SWF file (pass a path as the first argument) or, if none is
//! given, synthesizes a CTC-like workload, *writes it out as SWF*, parses
//! it back, and replays it — demonstrating the full archive round trip the
//! evaluation pipeline supports. Drop in the real `CTC-SP2-1996-3.1-cln.swf`
//! to reproduce the paper's exact workload.
//!
//! Run with: `cargo run --release --example swf_replay [trace.swf]`

use dynp_rs::prelude::*;
use dynp_rs::trace::swf;

fn main() {
    let arg = std::env::args().nth(1);
    let (text, source) = match &arg {
        Some(path) => (
            std::fs::read_to_string(path).expect("cannot read SWF file"),
            path.clone(),
        ),
        None => {
            // No file given: build a CTC-like workload and serialize it,
            // so the rest of the pipeline is identical either way.
            let model = CtcModel {
                nodes: 128,
                mean_interarrival: 200.0,
                ..CtcModel::default()
            };
            let trace = model.generate(400, 7);
            (
                swf::swf_to_string(&trace.jobs, trace.machine_size),
                "synthetic CTC model (no file given)".into(),
            )
        }
    };

    let parsed = swf::parse_swf(&text).expect("valid SWF");
    println!("source: {source}");
    println!(
        "parsed {} usable jobs ({} skipped), machine size {}",
        parsed.jobs.len(),
        parsed.skipped.len(),
        parsed.machine_size()
    );
    println!();
    println!("{}", TraceStats::compute(&parsed.jobs));
    println!();

    // Clamp oversized requests (archive traces sometimes contain jobs
    // wider than MaxProcs) and replay a manageable prefix.
    let machine = parsed.machine_size();
    let jobs = dynp_rs::trace::filter::prefix(
        &dynp_rs::trace::filter::clamp_widths(&parsed.jobs, machine),
        2_000,
    );
    println!("replaying the first {} jobs ...", jobs.len());

    for (label, run) in [
        (
            "FCFS",
            simulate(&jobs, FixedPolicy(Policy::Fcfs), SimConfig::new(machine)),
        ),
        (
            "SJF ",
            simulate(&jobs, FixedPolicy(Policy::Sjf), SimConfig::new(machine)),
        ),
    ] {
        println!(
            "  {label}  SLDwA {:>7.2}  avg wait {:>8.0} s  util {:>5.1}%",
            run.summary.sldwa,
            run.summary.avg_wait,
            run.summary.utilization * 100.0
        );
    }
    let dynp = simulate(
        &jobs,
        SelfTuning::paper_config(Metric::SldwA),
        SimConfig::new(machine),
    );
    println!(
        "  dynP  SLDwA {:>7.2}  avg wait {:>8.0} s  util {:>5.1}%  ({} switches)",
        dynp.summary.sldwa,
        dynp.summary.avg_wait,
        dynp.summary.utilization * 100.0,
        dynp.selector.stats().switches()
    );
}
