//! Quickstart: generate a CTC-like workload, replay it under the
//! self-tuning dynP scheduler, and print the run statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use dynp_rs::prelude::*;

fn main() {
    // 1. A workload: 300 jobs shaped like the CTC trace, on a 128-node
    //    machine (seeded, so every run is identical).
    let model = CtcModel {
        nodes: 128,
        mean_interarrival: 180.0,
        ..CtcModel::default()
    };
    let trace = model.generate(300, 42);
    println!("--- workload ---");
    println!("{}", TraceStats::compute(&trace.jobs));
    println!();

    // 2. The scheduler: dynP switching among FCFS/SJF/LJF, deciding by
    //    slowdown weighted by job area (the paper's Table 1 metric), with
    //    the advanced decider.
    let scheduler = SelfTuning::paper_config(Metric::SldwA);

    // 3. Replay the trace through the planning-based RMS.
    let run = simulate(&trace.jobs, scheduler, SimConfig::new(trace.machine_size));

    println!("--- results under {} ---", run.label);
    println!("{}", run.summary);
    println!();
    println!(
        "policy switches: {} over {} self-tuning steps",
        run.selector.stats().switches(),
        run.selector.stats().steps()
    );
    for t in run.selector.stats().transitions().iter().take(5) {
        println!("  t={:>8}s  {} -> {}", t.time, t.from, t.to);
    }

    // 4. Compare against the fixed policies.
    println!();
    println!("--- fixed-policy baselines (SLDwA / avg response) ---");
    for policy in Policy::PAPER_SET {
        let fixed = simulate(
            &trace.jobs,
            FixedPolicy(policy),
            SimConfig::new(trace.machine_size),
        );
        println!(
            "  {:<5} SLDwA {:>6.2}   avg response {:>8.0} s",
            policy.name(),
            fixed.summary.sldwa,
            fixed.summary.avg_response
        );
    }
}
