//! The paper's §4 evaluation protocol in one call: a weekly-shard
//! campaign comparing FCFS/SJF/LJF and dynP, with a sample of
//! quasi-off-line snapshots solved exactly under a node budget.
//!
//! The campaign checkpoints every finished cell to
//! `results/example-campaign/`, so re-running this example resumes
//! instantly (watch `cells resumed`) and rewrites the identical report.
//!
//! Run with: `cargo run --release --example campaign`

use dynp_rs::prelude::*;

fn main() -> Result<(), dynp_rs::Error> {
    // A few weeks of a CTC-like workload on a 64-node machine. The
    // arrival rate is chosen so the machine stays busy without building
    // an unbounded backlog (a saturated machine makes every replay — and
    // this example — quadratically slower).
    let model = CtcModel {
        nodes: 64,
        mean_interarrival: 6_000.0,
        ..CtcModel::default()
    };
    let trace = model.generate(400, 42);

    // The paper's selector set, exact estimates plus 3x over-estimation,
    // and an exact comparison capped at a deterministic node budget (the
    // "CPLEX was interrupted" regime from §4).
    let config = CampaignConfig::new("example-campaign", trace.machine_size)
        .with_selectors(SelectorSpec::paper_set())
        .with_factors(vec![1.0, 3.0])
        .with_exact(Some(
            ExactConfig::new()
                .with_job_range(3, 10)
                .with_max_snapshots(1)
                .with_node_budget(500)
                .with_lp_iteration_budget(20_000)
                // The paper's Eq. 6 budget (2 GiB) targets a 430-node
                // machine and happily builds LPs with thousands of rows —
                // tractable for CPLEX, slow for our dense-inverse simplex.
                // A 2 MB budget makes Eq. 6 pick a ~10-minute grid, which
                // keeps this demo interactive.
                .with_memory_budget_bytes(2 << 20),
        ))
        .with_workers(4)
        .with_output_dir("results/example-campaign");

    let outcome = run_campaign(&trace.jobs, &config)?;
    println!(
        "campaign {}: {} cells ({} computed, {} resumed)",
        outcome.fingerprint,
        outcome.cells_total,
        outcome.cells_computed,
        outcome.cells_resumed
    );
    println!();
    println!(
        "{}",
        std::fs::read_to_string(&outcome.report_text_path).expect("report written")
    );
    println!("JSON report: {}", outcome.report_json_path.display());
    Ok(())
}
